"""Structured scenario results: typed rows + metadata + rendering.

Every entry point used to print free text; :class:`ScenarioResult` keeps
the human-readable rendering *and* the machine-readable rows, so the CLI
``--json`` flag, the experiment registry, and sweep aggregation all read
the same structure.  ``jsonable`` scrubs numpy scalars and tuple keys so
``to_dict`` output always survives ``json.dumps`` unchanged.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any


def jsonable(value: Any) -> Any:
    """Recursively convert a value into JSON-native types.

    numpy scalars (``np.float64``, ``np.bool_``, ...) are unwrapped via
    ``.item()``, tuples become lists, non-string dict keys are
    stringified, and anything else unrecognized falls back to ``str``.
    """
    if value is None or isinstance(value, (str, int, float)):
        # Covers bool (int subclass) and np.float64 (float subclass).
        return value.item() if hasattr(value, "item") else value
    if isinstance(value, Mapping):
        return {
            (k if isinstance(k, str) else str(k)): jsonable(v)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    if hasattr(value, "item") and callable(value.item):
        try:
            return jsonable(value.item())
        except (TypeError, ValueError):
            return str(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return jsonable(dataclasses.asdict(value))
    return str(value)


@dataclass
class ScenarioResult:
    """What :func:`repro.api.run` returns for any scenario.

    * ``rows`` -- the measurement table as JSON-native dicts (one row
      per operating point / platform plan / profiled workload);
    * ``metadata`` -- the echoed scenario plus derived context
      (resolved batch size, capacity, best operating point, ...);
    * ``text``/``summary`` -- the preformatted human rendering the CLI
      prints (``render`` joins them), byte-compatible with the legacy
      subcommand output;
    * ``notes`` -- advisory lines the CLI routes to stderr.
    """

    kind: str
    title: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)
    text: str = ""
    summary: str = ""
    notes: tuple[str, ...] = ()

    def render(self) -> str:
        """The human-readable report (tables + summary)."""
        return "\n\n".join(part for part in (self.text, self.summary) if part)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-safe structural dump (stable across CLI and library)."""
        return {
            "kind": self.kind,
            "title": self.title,
            "rows": jsonable(self.rows),
            "metadata": jsonable(self.metadata),
            "text": self.text,
            "summary": self.summary,
            "notes": list(self.notes),
        }
