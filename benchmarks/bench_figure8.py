"""Regenerate Figure 8: combined rooflines."""

from benchmarks.conftest import run_experiment


def test_figure8(benchmark):
    result = run_experiment(benchmark, "figure8")
    assert result.measured["tpu_stars_at_or_above_other_rooflines"]
