"""Performance counters (the TPU has 106; Section 8 praises having them).

:class:`CounterBank` is a named-counter file with a fixed catalog, and
:class:`CycleBreakdown` is the Table 3 view: rows 1/4/5/6 (array active,
weight-load stall, weight shift, non-matrix) partition total cycles, while
useful/unused MAC fractions subdivide active cycles and RAW/PCIe stalls are
overlapping sub-counters inside non-matrix time.
"""

from __future__ import annotations

from dataclasses import dataclass


#: The counters the simulator maintains.  The real chip exposes 106; we
#: enumerate the ones the paper's analysis actually consumes plus the
#: bookkeeping the compiler and driver use, and reserve the remainder so
#: the bank still has 106 addressable slots.
_NAMED_COUNTERS = (
    "total_cycles",
    "array_active_cycles",
    "weight_stall_cycles",
    "weight_shift_cycles",
    "non_matrix_cycles",
    "raw_stall_cycles",
    "input_stall_cycles",
    "useful_mac_cycles",  # MAC-weighted: sum over active cycles of filled fraction
    "activation_cycles",
    "pooling_cycles",
    "dma_in_cycles",
    "dma_out_cycles",
    "instructions_issued",
    "matmul_instructions",
    "convolve_instructions",
    "activate_instructions",
    "read_weights_instructions",
    "read_host_instructions",
    "write_host_instructions",
    "sync_instructions",
    "nop_instructions",
    "weight_tiles_loaded",
    "weight_bytes_read",
    "ub_bytes_read",
    "ub_bytes_written",
    "acc_rows_written",
    "pcie_bytes_in",
    "pcie_bytes_out",
    "macs_issued",
    "ops_committed",
    "rows_streamed",
    "batches_completed",
)

CATALOG_SIZE = 106


class CounterBank:
    """A fixed catalog of named saturating-free 64-bit counters."""

    def __init__(self) -> None:
        self._values: dict[str, int] = {name: 0 for name in _NAMED_COUNTERS}
        reserved = CATALOG_SIZE - len(_NAMED_COUNTERS)
        for i in range(reserved):
            self._values[f"reserved_{i:02d}"] = 0

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def add(self, name: str, amount: float) -> None:
        if name not in self._values:
            raise KeyError(f"unknown counter {name!r}")
        if amount < 0:
            raise ValueError(f"counters only increment; got {amount} for {name}")
        self._values[name] += amount

    def get(self, name: str) -> float:
        try:
            return self._values[name]
        except KeyError:
            raise KeyError(f"unknown counter {name!r}") from None

    def reset(self) -> None:
        for name in self._values:
            self._values[name] = 0

    def snapshot(self) -> dict[str, float]:
        """All non-zero counters (reserved slots omitted when zero)."""
        return {k: v for k, v in self._values.items() if v or not k.startswith("reserved_")}


@dataclass(frozen=True)
class CycleBreakdown:
    """Table 3's cycle taxonomy for one application run.

    ``active + weight_stall + weight_shift + non_matrix == total`` (the
    paper's rows 1, 4, 5, 6 summing to 100%); ``useful_mac_fraction`` is
    row 2 (peak-normalized), ``raw_stall``/``input_stall`` are rows 7-8.
    """

    total: float
    active: float
    weight_stall: float
    weight_shift: float
    non_matrix: float
    useful_mac_weighted: float  # active cycles weighted by array fill
    raw_stall: float = 0.0
    input_stall: float = 0.0

    def __post_init__(self) -> None:
        parts = self.active + self.weight_stall + self.weight_shift + self.non_matrix
        if self.total <= 0:
            raise ValueError(f"total cycles must be positive, got {self.total}")
        if abs(parts - self.total) > 1e-6 * self.total:
            raise ValueError(
                f"cycle taxonomy must partition total: "
                f"{parts} != {self.total} "
                f"(active={self.active}, weight_stall={self.weight_stall}, "
                f"shift={self.weight_shift}, non_matrix={self.non_matrix})"
            )
        if self.useful_mac_weighted > self.active * (1 + 1e-9):
            raise ValueError("useful MAC-weighted cycles cannot exceed active cycles")

    @classmethod
    def from_counters(cls, bank: CounterBank) -> "CycleBreakdown":
        return cls(
            total=bank.get("total_cycles"),
            active=bank.get("array_active_cycles"),
            weight_stall=bank.get("weight_stall_cycles"),
            weight_shift=bank.get("weight_shift_cycles"),
            non_matrix=bank.get("non_matrix_cycles"),
            useful_mac_weighted=bank.get("useful_mac_cycles"),
            raw_stall=bank.get("raw_stall_cycles"),
            input_stall=bank.get("input_stall_cycles"),
        )

    # -- Table 3 rows, as fractions of total cycles --------------------------
    @property
    def active_fraction(self) -> float:
        return self.active / self.total

    @property
    def useful_mac_fraction(self) -> float:
        """Row 2: fraction of peak MAC-cycles doing useful work."""
        return self.useful_mac_weighted / self.total

    @property
    def unused_mac_fraction(self) -> float:
        """Row 3: active cycles whose MACs held no useful weights."""
        return self.active_fraction - self.useful_mac_fraction

    @property
    def weight_stall_fraction(self) -> float:
        return self.weight_stall / self.total

    @property
    def weight_shift_fraction(self) -> float:
        return self.weight_shift / self.total

    @property
    def non_matrix_fraction(self) -> float:
        return self.non_matrix / self.total

    @property
    def raw_stall_fraction(self) -> float:
        return self.raw_stall / self.total

    @property
    def input_stall_fraction(self) -> float:
        return self.input_stall / self.total
