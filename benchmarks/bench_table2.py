"""Regenerate Table 2: benchmarked chips and servers."""

from benchmarks.conftest import run_experiment


def test_table2(benchmark):
    result = run_experiment(benchmark, "table2")
    assert result.measured["tpu"]["ridge"] > 1300
    assert result.measured["cpu"]["ridge"] < 15
