"""The PCIe Gen3 x16 host interface and its DMA engine.

The TPU is an I/O-bus coprocessor: inputs arrive and results leave over
PCIe, and the host also streams the instruction buffer over the same link.
The timing model is bandwidth plus a fixed per-transfer setup cost; the
per-*batch* driver overhead (user-space driver work, doorbells,
interrupts) lives in :class:`repro.core.config.TPUConfig` and is charged
by the driver, not here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Transfer:
    """A completed DMA transfer, for accounting."""

    direction: str  # "in" (host->UB) or "out" (UB->host)
    nbytes: int
    seconds: float


class DMAEngine:
    """Models PCIe payload movement between host memory and the UB."""

    #: Per-transfer setup latency (descriptor fetch, TLP overheads).
    SETUP_S = 2e-6

    def __init__(self, bandwidth_bytes_per_s: float) -> None:
        if bandwidth_bytes_per_s <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bytes_per_s}")
        self.bandwidth = bandwidth_bytes_per_s
        self.transfers: list[Transfer] = []

    def transfer_seconds(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.SETUP_S + nbytes / self.bandwidth

    def host_to_device(self, payload: np.ndarray | None, nbytes: int) -> float:
        seconds = self.transfer_seconds(nbytes)
        self.transfers.append(Transfer("in", nbytes, seconds))
        return seconds

    def device_to_host(self, payload: np.ndarray | None, nbytes: int) -> float:
        seconds = self.transfer_seconds(nbytes)
        self.transfers.append(Transfer("out", nbytes, seconds))
        return seconds

    @property
    def bytes_in(self) -> int:
        return sum(t.nbytes for t in self.transfers if t.direction == "in")

    @property
    def bytes_out(self) -> int:
        return sum(t.nbytes for t in self.transfers if t.direction == "out")
