"""CLI smoke tests."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mlp0" in out and "table6" in out

    def test_list_groups_paper_and_extensions(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "paper workloads" in out and "extension workloads" in out
        assert "bert_s" in out and "gpt_s" in out

    def test_list_json_carries_both_tiers(self, capsys):
        assert main(["list", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["paper_workloads"] == [
            "mlp0", "mlp1", "lstm0", "lstm1", "cnn0", "cnn1",
        ]
        assert "bert_s" in data["extension_workloads"]
        assert "transformer_roofline" in data["experiments"]

    def test_profile(self, capsys):
        assert main(["profile", "mlp1"]) == 0
        out = capsys.readouterr().out
        assert "TOPS" in out and "Unified Buffer" in out

    def test_profile_transformer(self, capsys):
        assert main(["profile", "bert_s"]) == 0
        out = capsys.readouterr().out
        assert "TOPS" in out and "attention" in out

    def test_serve_transformer(self, capsys):
        assert main([
            "serve", "--workload", "gpt_s", "--slo-ms", "20",
            "--requests", "1500", "--loads", "0.5",
        ]) == 0
        out = capsys.readouterr().out
        assert "gpt_s" in out and "p99" in out

    def test_profile_precision_flag(self, capsys):
        assert main(["profile", "mlp1", "--activation-bits", "16"]) == 0
        assert "TOPS" in capsys.readouterr().out

    def test_experiment(self, capsys):
        assert main(["experiment", "table2"]) == 0
        assert "Haswell" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_report_writes_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", str(target)]) == 0
        assert target.exists()
        assert "## table1" in target.read_text()

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_serve_sweep(self, capsys):
        assert main([
            "serve", "--workload", "mlp0", "--replicas", "2",
            "--slo-ms", "7", "--requests", "2000", "--loads", "0.4,0.9",
        ]) == 0
        out = capsys.readouterr().out
        assert "p99" in out and "SLO" in out

    def test_serve_unknown_workload(self, capsys):
        assert main(["serve", "--workload", "resnet"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_serve_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.txt"
        trace.write_text("".join(f"{i * 1e-3}\n" for i in range(200)))
        assert main([
            "serve", "--workload", "mlp0", "--platform", "cpu",
            "--trace", str(trace),
        ]) == 0
        assert "p99" in capsys.readouterr().out

    def test_serve_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "serve" in capsys.readouterr().out

    def test_serve_trace_warns_on_ignored_flags(self, tmp_path, capsys):
        trace = tmp_path / "trace.txt"
        trace.write_text("".join(f"{i * 1e-3}\n" for i in range(200)))
        assert main([
            "serve", "--workload", "mlp0", "--platform", "cpu",
            "--trace", str(trace), "--traffic", "diurnal", "--loads", "0.5",
        ]) == 0
        err = capsys.readouterr().err
        assert "ignoring --traffic/--loads" in err

    def test_serve_trace_without_flags_does_not_warn(self, tmp_path, capsys):
        trace = tmp_path / "trace.txt"
        trace.write_text("".join(f"{i * 1e-3}\n" for i in range(200)))
        assert main([
            "serve", "--workload", "mlp0", "--platform", "cpu",
            "--trace", str(trace),
        ]) == 0
        assert "ignoring" not in capsys.readouterr().err


class TestScenarioCLI:
    """--config/--json adapters over the repro.run facade."""

    def test_serve_config_json_matches_facade(self, tmp_path, capsys):
        import repro

        spec = repro.ServeScenario(
            workload="mlp0", platform="cpu", loads=(0.5, 0.9), requests=500,
            seed=1,
        )
        config = tmp_path / "scenario.json"
        config.write_text(spec.to_json())
        assert main(["serve", "--config", str(config), "--json"]) == 0
        cli = json.loads(capsys.readouterr().out)
        lib = json.loads(json.dumps(repro.run(spec).to_dict()))
        assert cli == lib
        assert cli["kind"] == "serve"
        assert len(cli["rows"]) == 2

    def test_serve_flags_and_config_agree(self, tmp_path, capsys):
        config = tmp_path / "scenario.json"
        config.write_text(json.dumps({
            "kind": "serve", "workload": "mlp0", "platform": "cpu",
            "loads": [0.5], "requests": 400,
        }))
        assert main(["serve", "--config", str(config)]) == 0
        from_config = capsys.readouterr().out
        assert main([
            "serve", "--workload", "mlp0", "--platform", "cpu",
            "--loads", "0.5", "--requests", "400",
        ]) == 0
        assert capsys.readouterr().out == from_config

    def test_serve_config_wrong_kind(self, tmp_path, capsys):
        config = tmp_path / "scenario.json"
        config.write_text(json.dumps({"kind": "datacenter"}))
        assert main(["serve", "--config", str(config)]) == 2
        assert "datacenter" in capsys.readouterr().err

    def test_serve_config_missing_file(self, tmp_path, capsys):
        assert main(["serve", "--config", str(tmp_path / "nope.json")]) == 2
        assert "serve:" in capsys.readouterr().err

    def test_serve_sweep_config(self, tmp_path, capsys):
        config = tmp_path / "sweep.json"
        config.write_text(json.dumps({
            "kind": "sweep",
            "base": {"kind": "serve", "workload": "mlp0", "platform": "cpu",
                     "loads": [0.5], "requests": 300},
            "axes": {"replicas": [1, 2]},
        }))
        assert main(["serve", "--config", str(config), "--json"]) == 0
        result = json.loads(capsys.readouterr().out)
        assert result["kind"] == "sweep"
        assert [row["sweep"]["replicas"] for row in result["rows"]] == [1, 2]

    def test_profile_json(self, capsys):
        assert main(["profile", "mlp0", "--json"]) == 0
        result = json.loads(capsys.readouterr().out)
        assert result["kind"] == "profile"
        assert result["rows"][0]["tera_ops"] > 0

    def test_profile_without_app_or_config(self, capsys):
        assert main(["profile"]) == 2
        assert "--config" in capsys.readouterr().err

    def test_experiment_spec_introspection(self, capsys):
        assert main(["experiment", "serving_sweep", "--spec"]) == 0
        description = json.loads(capsys.readouterr().out)
        assert description["parameterized"] is True
        assert description["scenario"]["kind"] == "serve"

    def test_list_json(self, capsys):
        assert main(["list", "--json"]) == 0
        registry = json.loads(capsys.readouterr().out)
        assert "mlp0" in registry["workloads"]
        assert "table6" in registry["experiments"]
        assert "sweep" in registry["scenario_kinds"]

    def test_report_only_subset_with_jobs(self, tmp_path, capsys):
        target = tmp_path / "subset.md"
        assert main([
            "report", str(target), "--only", "table1,table2", "--jobs", "2",
        ]) == 0
        text = target.read_text()
        assert "## table1" in text and "## table2" in text

    def test_report_unknown_only_id(self, tmp_path, capsys):
        assert main([
            "report", str(tmp_path / "r.md"), "--only", "table99",
        ]) == 2
        assert "unknown experiment" in capsys.readouterr().err
