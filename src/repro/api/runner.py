"""``repro.run(scenario)``: one facade executing any declarative spec.

Dispatches on scenario kind and returns a :class:`ScenarioResult` whose
``render()`` matches the legacy CLI text for that subcommand and whose
``rows``/``metadata`` carry the same measurements structurally.  Heavy
simulator imports happen inside the per-kind runners so that importing
:mod:`repro.api` (e.g. just to build or validate a spec) stays cheap.
"""

from __future__ import annotations

from typing import Any

from repro.api.result import ScenarioResult
from repro.api.spec import (
    DatacenterScenario,
    GlobalScenario,
    LLMServeScenario,
    ProfileScenario,
    ScenarioSpec,
    ServeScenario,
    SpecError,
    SweepSpec,
)


def run(scenario: ScenarioSpec) -> ScenarioResult:
    """Execute any scenario (or sweep of scenarios) and return its result.

    ``repro.run(ServeScenario(...))`` and ``python -m repro serve
    --config spec.json --json`` produce identical structured results by
    construction: the CLI is a thin adapter over this function.
    """
    if isinstance(scenario, ProfileScenario):
        return _run_profile(scenario)
    if isinstance(scenario, ServeScenario):
        return _run_serve(scenario)
    if isinstance(scenario, DatacenterScenario):
        return _run_datacenter(scenario)
    if isinstance(scenario, GlobalScenario):
        return _run_globe(scenario)
    if isinstance(scenario, LLMServeScenario):
        return _run_llm(scenario)
    if isinstance(scenario, SweepSpec):
        return _run_sweep(scenario)
    raise SpecError(
        f"cannot run {type(scenario).__name__}: expected one of "
        "ProfileScenario, ServeScenario, DatacenterScenario, "
        "GlobalScenario, LLMServeScenario, SweepSpec"
    )


def _run_profile(scenario: ProfileScenario) -> ScenarioResult:
    from repro.analysis.common import tpu_driver, workload

    model = workload(scenario.workload)
    driver = tpu_driver()
    compiled = driver.compile(
        model,
        weight_bits=scenario.weight_bits,
        activation_bits=scenario.activation_bits,
    )
    result = driver.profile(compiled)
    b = result.breakdown
    ips = driver.ips(compiled, result)
    ub_mib = compiled.ub_peak_bytes / 2**20
    text = "\n".join([
        model.summary(),
        compiled.program.summary(),
        f"cycles            : {result.cycles:,.0f} ({result.seconds * 1e3:.2f} ms/batch)",
        f"array active      : {b.active_fraction:.1%} (useful {b.useful_mac_fraction:.1%})",
        f"weight stall/shift: {b.weight_stall_fraction:.1%} / {b.weight_shift_fraction:.1%}",
        f"non-matrix        : {b.non_matrix_fraction:.1%} "
        f"(RAW {b.raw_stall_fraction:.1%}, input {b.input_stall_fraction:.1%})",
        f"delivered         : {result.tera_ops:.1f} TOPS",
        f"throughput        : {ips:,.0f} IPS incl. host",
        f"Unified Buffer    : {ub_mib:.1f} MiB",
    ])
    row = {
        "workload": scenario.workload,
        "weight_bits": scenario.weight_bits,
        "activation_bits": scenario.activation_bits,
        "cycles": result.cycles,
        "ms_per_batch": result.seconds * 1e3,
        "tera_ops": result.tera_ops,
        "ips": ips,
        "ub_peak_mib": ub_mib,
        "active_fraction": b.active_fraction,
        "useful_mac_fraction": b.useful_mac_fraction,
        "weight_stall_fraction": b.weight_stall_fraction,
        "weight_shift_fraction": b.weight_shift_fraction,
        "non_matrix_fraction": b.non_matrix_fraction,
    }
    return ScenarioResult(
        kind=scenario.kind,
        title=f"profile {scenario.workload} "
              f"(W{scenario.weight_bits}/A{scenario.activation_bits})",
        rows=[row],
        metadata={"scenario": scenario.to_dict()},
        text=text,
    )


def _serve_fleet_spec(scenario: ServeScenario) -> tuple[Any, int | None, tuple[str, ...]]:
    """Resolve a :class:`FleetSpec` plus (batch, advisory notes)."""
    from repro.analysis.common import platforms, workload
    from repro.serving.sweep import FleetSpec

    platform = platforms()[scenario.platform]
    model = workload(scenario.workload)
    batch = scenario.batch
    notes: tuple[str, ...] = ()
    if batch is None and scenario.policy in ("fixed", "timeout"):
        batch = platform.latency_bounded_batch(model, scenario.slo_seconds)
        notes = (f"(batch not given; using latency-bounded batch {batch})",)
    timeout = (
        scenario.timeout_ms * 1e-3 if scenario.timeout_ms is not None else None
    )
    spec = FleetSpec(
        platform=platform,
        model=model,
        replicas=scenario.replicas,
        policy=scenario.policy,
        slo_seconds=scenario.slo_seconds,
        batch_size=batch,
        timeout_seconds=timeout,
        router=scenario.router,
    )
    return spec, batch, notes


def _run_serve(scenario: ServeScenario) -> ScenarioResult:
    from repro.serving import load_trace, make_traffic
    from repro.serving.sweep import max_throughput_under_slo, run_point, sweep_table

    spec, batch, notes = _serve_fleet_spec(scenario)
    title = (
        f"serve {scenario.workload} on {scenario.platform} "
        f"x{scenario.replicas} ({scenario.policy} batching)"
    )
    metadata: dict[str, Any] = {
        "scenario": scenario.to_dict(),
        "resolved_batch": batch,
        "max_batch": spec.max_batch(),
        "capacity_rps": spec.capacity_rps(),
    }

    if scenario.trace is not None:
        arrivals = load_trace(scenario.trace)
        result = spec.build().run(arrivals)
        stats = result.stats(slo_seconds=spec.slo_seconds)
        text = "\n".join([
            f"trace {scenario.trace}: {stats.completed} requests over "
            f"{arrivals[-1]:.3f} s on {spec.platform.name} x{spec.replicas}",
            f"  throughput {stats.throughput_rps:,.0f}/s  "
            f"p50 {stats.p50_seconds * 1e3:.2f} ms  "
            f"p99 {stats.p99_seconds * 1e3:.2f} ms  "
            f"util {stats.utilization:.0%}  "
            f"SLO misses {stats.slo_miss_fraction:.1%}",
        ])
        row = {
            "trace": scenario.trace,
            "completed": stats.completed,
            "horizon_seconds": float(arrivals[-1]),
            "throughput_rps": stats.throughput_rps,
            "p50_seconds": stats.p50_seconds,
            "p99_seconds": stats.p99_seconds,
            "mean_seconds": stats.mean_seconds,
            "utilization": stats.utilization,
            "slo_miss_fraction": stats.slo_miss_fraction,
            "mean_batch": stats.mean_batch,
        }
        metadata["mode"] = "trace"
        return ScenarioResult(
            kind=scenario.kind, title=title, rows=[row],
            metadata=metadata, text=text, notes=notes,
        )

    traffic = make_traffic(
        scenario.traffic,
        swing=scenario.diurnal_swing,
        period_seconds=scenario.diurnal_period_s,
    )
    points = [
        run_point(
            spec, fraction, n_requests=scenario.requests, seed=scenario.seed,
            traffic=traffic,
        )[0]
        for fraction in scenario.loads
    ]
    sections = []
    if scenario.traffic == "diurnal":
        period = (
            f"{scenario.diurnal_period_s:g} s"
            if scenario.diurnal_period_s is not None
            else "one cycle per run"
        )
        sections.append(
            f"(traffic: diurnal, swing {scenario.diurnal_swing:+.0%}, "
            f"period {period})"
        )
    sections.append(sweep_table(spec, points).render())
    best = max_throughput_under_slo(points)
    if best is None:
        summary = (
            f"no swept load meets the {scenario.slo_ms:g} ms p99 SLO "
            "(overloaded or SLO below batch latency)"
        )
    else:
        summary = (
            f"max sustainable throughput under the {scenario.slo_ms:g} ms SLO: "
            f"{best.throughput_rps:,.0f}/s at {best.load_fraction:.0%} load "
            f"(p99 {best.p99_seconds * 1e3:.2f} ms)"
        )
    metadata["mode"] = "sweep"
    metadata["best"] = None if best is None else best.to_row()
    return ScenarioResult(
        kind=scenario.kind,
        title=title,
        rows=[p.to_row() for p in points],
        metadata=metadata,
        text="\n".join(sections),
        summary=summary,
        notes=notes,
    )


def _run_datacenter(scenario: DatacenterScenario) -> ScenarioResult:
    from repro.analysis.datacenter import (
        autoscaler_table,
        fig10_die_ratio,
        provisioning_table,
        run_study,
        study_config,
        study_summary,
    )
    from repro.datacenter.tco import servers_for

    config = study_config(scenario)
    result = run_study(config)
    rows: list[dict[str, Any]] = []
    for kind, plan in result.plans.items():
        e, s = plan.energy, plan.stats
        die_ratio = fig10_die_ratio(kind, config.workload, e.utilization)
        rows.append({
            "section": "provisioning",
            "platform": kind,
            "replicas": plan.replicas,
            "servers": servers_for(kind, plan.replicas),
            "p99_seconds": s.p99_seconds,
            "meets_slo": plan.meets_slo,
            "utilization": e.utilization,
            "avg_watts": e.avg_watts,
            "peak_watts": e.peak_watts,
            "power_ratio": e.power_ratio,
            "fig10_die_ratio": die_ratio,
            "energy_per_request_j": e.energy_per_request_j,
            "usd_per_million_requests": plan.cost.usd_per_million_requests,
        })
    for o in result.outcomes:
        rows.append({
            "section": "autoscaling",
            "platform": result.autoscaled_kind,
            "policy": o.policy,
            "peak_replicas": o.peak_replicas,
            "mean_powered": o.mean_powered,
            "p99_seconds": o.stats.p99_seconds,
            "slo_miss_fraction": o.stats.slo_miss_fraction,
            "avg_watts": o.energy.avg_watts,
            "energy_per_request_j": o.energy.energy_per_request_j,
            "usd_per_million_requests": o.cost.usd_per_million_requests,
        })
    text = "\n\n".join([
        provisioning_table(result).render(),
        autoscaler_table(result).render(),
    ])
    return ScenarioResult(
        kind=scenario.kind,
        title=f"datacenter {scenario.workload} "
              f"({','.join(scenario.platforms)})",
        rows=rows,
        metadata={
            "scenario": scenario.to_dict(),
            "autoscaled_kind": result.autoscaled_kind,
            "period_seconds": config.period_seconds,
        },
        text=text,
        summary=study_summary(result),
    )


def _run_globe(scenario: GlobalScenario) -> ScenarioResult:
    from repro.globe import simulate_global
    from repro.util.tables import TextTable

    result = simulate_global(scenario)
    table = TextTable(
        ["cluster", "region", "mean req/s", "peak rho", "p50 ms", "p99 ms",
         "backends"],
        title=(
            f"{len(scenario.regions)} regions, "
            f"{len(result.cluster_rows)} clusters, "
            f"{result.total_requests:,.0f} requests over "
            f"{result.duration_s:g} s ({result.backend} backend, "
            f"{result.routing} routing)"
        ),
    )
    for row in result.cluster_rows:
        table.add_row([
            row["cluster"], row["region"], row["mean_rps"], row["peak_rho"],
            row["p50_seconds"] * 1e3, row["p99_seconds"] * 1e3,
            row["backends"],
        ])
    summary = (
        f"global p99 {result.p99_seconds * 1e3:.2f} ms "
        f"(p50 {result.p50_seconds * 1e3:.2f} ms) at "
        f"{result.throughput_rps:,.0f} req/s; "
        f"{result.spill_fraction:.1%} served out of region, "
        f"cost {result.cost_per_request:.2f}/req"
    )
    rows: list[dict[str, Any]] = [{
        "section": "global",
        "backend": result.backend,
        "routing": result.routing,
        "total_requests": result.total_requests,
        "throughput_rps": result.throughput_rps,
        "p50_seconds": result.p50_seconds,
        "p99_seconds": result.p99_seconds,
        "mean_seconds": result.mean_seconds,
        "spill_fraction": result.spill_fraction,
        "cost_per_request": result.cost_per_request,
        "backend_cells": dict(result.backend_cells),
    }]
    rows += [{"section": "cluster", **row} for row in result.cluster_rows]
    return ScenarioResult(
        kind=scenario.kind,
        title=(
            f"globe {scenario.workload} ({scenario.routing} routing, "
            f"{scenario.backend} backend)"
        ),
        rows=rows,
        metadata={
            "scenario": scenario.to_dict(),
            "backend_cells": dict(result.backend_cells),
        },
        text=table.render(),
        summary=summary,
    )


def _run_llm(scenario: LLMServeScenario) -> ScenarioResult:
    from repro.serving.continuous import (
        build_llm_config,
        fleet_capacity_tokens_per_s,
        llm_row,
        run_llm_point,
    )
    from repro.util.tables import TextTable

    controllers = {}
    if scenario.autoscale:
        from repro.datacenter.llm_pools import pool_controllers

        controllers = pool_controllers(
            build_llm_config(scenario),
            scenario.prompt_tokens,
            scenario.decode_tokens,
        )
    cfg = build_llm_config(scenario, **controllers)
    capacity = fleet_capacity_tokens_per_s(
        cfg, scenario.prompt_tokens, scenario.decode_tokens
    )
    rows = []
    for load in scenario.loads:
        rate = load * capacity / scenario.decode_tokens
        result = run_llm_point(
            cfg,
            rate_rps=rate,
            requests=scenario.requests,
            prompt_mean=scenario.prompt_tokens,
            decode_mean=scenario.decode_tokens,
            seed=scenario.seed,
        )
        rows.append(llm_row(
            result,
            load=load,
            rate_rps=rate,
            slo_tpot_s=scenario.slo_tpot_seconds,
            slo_ttft_s=scenario.slo_ttft_seconds,
        ))
    pools = (
        f"{scenario.chips} decode + {scenario.prefill_chips} prefill chips"
        if scenario.mode == "disaggregated"
        else f"{scenario.chips} chips"
    )
    table = TextTable(
        ["load", "req/s", "tok/s/chip", "goodput/chip", "batch", "kv peak",
         "evict", "TTFT p99 ms", "TPOT p99 ms", "SLO"],
        title=(
            f"{scenario.workload} decode, {scenario.scheduler} batching, "
            f"{scenario.mode} ({pools}), "
            f"{scenario.requests} requests per point"
        ),
    )
    for row in rows:
        table.add_row([
            f"{row['load']:.2f}", f"{row['offered_rps']:,.0f}",
            f"{row['tokens_per_second_per_chip']:,.0f}",
            f"{row['goodput_tokens_per_second_per_chip']:,.0f}",
            f"{row['mean_batch']:.1f}", f"{row['kv_peak_fraction']:.0%}",
            f"{row['evictions']}", f"{row['p99_ttft_ms']:.2f}",
            f"{row['p99_tpot_ms']:.3f}", f"{row['slo_attainment']:.1%}",
        ])
    feasible = [
        row for row in rows
        if row["p99_tpot_ms"] <= scenario.slo_tpot_ms
        and row["p99_ttft_ms"] <= scenario.slo_ttft_ms
    ]
    if feasible:
        best = max(
            feasible, key=lambda r: r["goodput_tokens_per_second_per_chip"]
        )
        summary = (
            f"best {best['goodput_tokens_per_second_per_chip']:,.0f} "
            f"goodput tokens/s/chip at load {best['load']:.2f} within "
            f"p99 TPOT {scenario.slo_tpot_ms:g} ms / "
            f"TTFT {scenario.slo_ttft_ms:g} ms"
        )
    else:
        summary = (
            f"no load meets p99 TPOT {scenario.slo_tpot_ms:g} ms and "
            f"TTFT {scenario.slo_ttft_ms:g} ms; the fleet is undersized"
        )
    return ScenarioResult(
        kind=scenario.kind,
        title=(
            f"llm {scenario.workload} ({scenario.scheduler} batching, "
            f"{scenario.mode})"
        ),
        rows=rows,
        metadata={
            "scenario": scenario.to_dict(),
            "kv_capacity_tokens": cfg.kv_capacity,
            "kv_bytes_per_token": cfg.kv_bytes_per_token,
            "weight_stream_us": cfg.timing.weight_stream_seconds * 1e6,
            "capacity_tokens_per_s": capacity,
        },
        text=table.render(),
        summary=summary,
    )


def _run_sweep(scenario: SweepSpec) -> ScenarioResult:
    expanded = scenario.expand()
    axis_names = [name for name, _ in scenario.axes]
    rows: list[dict[str, Any]] = []
    sections: list[str] = []
    notes: list[str] = []
    for overrides, sub in expanded:
        sub_result = run(sub)
        label = ", ".join(f"{k}={v}" for k, v in sorted(overrides.items()))
        sections.append(f"### {label}\n\n{sub_result.render()}")
        notes.extend(sub_result.notes)
        for row in sub_result.rows:
            rows.append({"sweep": dict(overrides), **row})
    return ScenarioResult(
        kind=scenario.kind,
        title=f"sweep over {', '.join(axis_names)} "
              f"({len(expanded)} x {scenario.base.kind})",
        rows=rows,
        metadata={"scenario": scenario.to_dict(), "points": len(expanded)},
        text="\n\n".join(sections),
        notes=tuple(dict.fromkeys(notes)),
    )
