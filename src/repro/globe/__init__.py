"""repro.globe -- planet-scale multi-region serving on a hybrid backend.

The pipeline is three layers, one module each:

* :mod:`repro.globe.topology` -- regions with phase-offset diurnal
  demand, clusters with real fleet capacities, an inter-region RTT
  matrix, and the shared binned demand profile.
* :mod:`repro.globe.routing` -- a routing policy (latency / cost /
  spillover) water-fills each bin's regional demand into a
  ``shares[bin, region, cluster]`` rate matrix.
* :mod:`repro.globe.backend` -- the hybrid evaluator prices each
  (cluster, bin) cell analytically below the SLO knee, with the exact
  event engine near it, and with a fluid backlog above it; the exact
  evaluator event-simulates every request for validation.

:func:`simulate_global` is the front door; scenarios come from
:class:`repro.api.spec.GlobalScenario` (``repro.run()`` or ``python -m
repro globe`` on the command line).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro import obs
from repro.globe.backend import (
    GlobalResult,
    evaluate_exact,
    evaluate_hybrid,
    weighted_percentile,
)
from repro.globe.routing import ROUTING_POLICIES, RoutingPlan, plan_routes
from repro.globe.topology import (
    Cluster,
    Region,
    Topology,
    build_topology,
    region_arrivals,
)

if TYPE_CHECKING:
    from repro.api.spec import GlobalScenario

__all__ = [
    "Cluster",
    "GlobalResult",
    "Region",
    "ROUTING_POLICIES",
    "RoutingPlan",
    "Topology",
    "build_topology",
    "evaluate_exact",
    "evaluate_hybrid",
    "plan_routes",
    "region_arrivals",
    "simulate_global",
    "weighted_percentile",
]


def simulate_global(scenario: "GlobalScenario") -> GlobalResult:
    """Resolve, route, and evaluate one global serving scenario."""
    with obs.span("globe.simulate", cat="globe", backend=scenario.backend):
        topology = build_topology(scenario)
        plan = plan_routes(topology, scenario.routing, scenario.spill_threshold)
        if scenario.backend == "exact":
            return evaluate_exact(topology, plan, seed=scenario.seed)
        knee_lo, knee_hi = scenario.knee
        return evaluate_hybrid(
            topology,
            plan,
            knee_lo=knee_lo,
            knee_hi=knee_hi,
            event_requests=scenario.event_requests,
            seed=scenario.seed,
        )
