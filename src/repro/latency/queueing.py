"""The classic single-server batching-queue models: simulated and closed form.

Requests arrive Poisson; the server collects them into fixed-size batches
(inference batching) and serves FIFO.  Each batch occupies the server for
``occupancy`` seconds but a request's response completes after
``latency`` seconds from batch start -- the two differ on the TPU, where
host work pipelines with device work (occupancy = max of the two,
latency = their sum).  Response time = completion - arrival, measured per
request; p99 is the paper's metric.

The two simulation entry points are thin wrappers over the shared
discrete-event engine in :mod:`repro.serving` (a one-replica fleet with a
fixed batcher for the open-loop case; the engine's closed-loop generator
for the load test).  The general multi-replica/multi-policy simulator
lives in :mod:`repro.serving.fleet`.

Alongside them sit the *closed-form* pieces -- Erlang-C, M/M/c and
M/D/c mean waits, and a fluid backlog recurrence.  These are what the
planet-scale hybrid backend (:mod:`repro.globe.backend`) uses to price
clusters far from the SLO knee without paying event-loop time: analytic
below the knee, fluid above it, and the exact event engine only in
between.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.serving.batcher import FixedBatcher
from repro.serving.engine import ConstantCurve, run_closed_loop, summarize
from repro.serving.fleet import Fleet, Replica
from repro.serving.traffic import poisson_arrivals


def erlang_c(servers: int, utilization: float) -> float:
    """The probability an M/M/c arrival has to wait (the Erlang-C formula).

    ``utilization`` is per-server (``rho = rate / (c * mu)``).  At or
    above 1.0 the queue is unstable and every arrival waits, so the
    function saturates at 1.0 rather than raising -- callers probing a
    load sweep shouldn't have to special-case the overloaded points.
    """
    if servers <= 0:
        raise ValueError(f"servers must be positive, got {servers}")
    if utilization < 0:
        raise ValueError(f"utilization must be non-negative, got {utilization}")
    if utilization >= 1.0:
        return 1.0
    offered = servers * utilization  # load in Erlangs
    # Erlang-B by the standard stable recurrence, then the B->C conversion.
    blocking = 1.0
    for k in range(1, servers + 1):
        blocking = offered * blocking / (k + offered * blocking)
    return blocking / (1.0 - utilization * (1.0 - blocking))


def mmc_mean_wait(rate: float, servers: int, service_seconds: float) -> float:
    """Mean queueing delay (excluding service) in an M/M/c queue.

    ``Wq = C(c, rho) / (c/s - rate)``; returns ``inf`` when the queue is
    unstable (``rate >= c / service``).
    """
    if rate < 0:
        raise ValueError(f"rate must be non-negative, got {rate}")
    if service_seconds <= 0:
        raise ValueError(f"service must be positive, got {service_seconds}")
    if rate == 0:
        return 0.0
    capacity = servers / service_seconds
    if rate >= capacity:
        return math.inf
    return erlang_c(servers, rate / capacity) / (capacity - rate)


def mdc_mean_wait(rate: float, servers: int, service_seconds: float) -> float:
    """Mean queueing delay in an M/D/c queue (deterministic service).

    The Allen-Cunneen approximation with a squared coefficient of
    variation of zero: half the M/M/c wait.  Inference batches are
    near-deterministic (the latency curve is a function of batch size,
    not of luck), which is why the /2 matters -- pricing a cluster with
    the M/M/c wait would double-count variance the device doesn't have.
    """
    return 0.5 * mmc_mean_wait(rate, servers, service_seconds)


def fluid_backlog(
    rates: np.ndarray | list[float],
    capacity_rps: float,
    bin_seconds: float,
    initial: float = 0.0,
) -> np.ndarray:
    """End-of-bin backlogs under the fluid (flow-conservation) model.

    ``backlog[b] = max(0, backlog[b-1] + (rates[b] - capacity) * dt)`` --
    the deterministic limit of an overloaded queue, where stochastic
    detail is negligible next to the deficit between offered and served
    flow.  This is the overload regime of the hybrid backend: above the
    SLO knee the wait is backlog/capacity, not Erlang arithmetic.
    """
    if capacity_rps <= 0:
        raise ValueError(f"capacity must be positive, got {capacity_rps}")
    if bin_seconds <= 0:
        raise ValueError(f"bin_seconds must be positive, got {bin_seconds}")
    if initial < 0:
        raise ValueError(f"initial backlog must be non-negative, got {initial}")
    out = np.empty(len(rates))
    backlog = initial
    for b, rate in enumerate(rates):
        backlog = max(0.0, backlog + (float(rate) - capacity_rps) * bin_seconds)
        out[b] = backlog
    return out


@dataclass(frozen=True)
class BatchQueueStats:
    """Measured behaviour of one (arrival rate, batch size) operating point."""

    arrival_rate: float
    batch_size: int
    completed: int
    p99_seconds: float
    p50_seconds: float
    mean_seconds: float
    throughput_ips: float
    server_utilization: float


def simulate_batch_queue(
    arrival_rate: float,
    batch_size: int,
    occupancy_seconds: float,
    latency_seconds: float | None = None,
    n_requests: int = 20000,
    seed: int = 0,
    warmup_fraction: float = 0.1,
) -> BatchQueueStats:
    """Simulate a single batching server at a fixed offered load.

    ``occupancy_seconds`` is how long the server is busy per batch;
    ``latency_seconds`` (default: equal) is when responses come back
    relative to batch start.
    """
    if arrival_rate <= 0:
        raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    if occupancy_seconds <= 0:
        raise ValueError("occupancy must be positive")
    latency = occupancy_seconds if latency_seconds is None else latency_seconds
    if latency < occupancy_seconds:
        raise ValueError("latency cannot be shorter than occupancy")

    curve = ConstantCurve(occupancy_seconds, latency)
    fleet = Fleet([Replica(curve, FixedBatcher(batch_size))])
    result = fleet.run(poisson_arrivals(arrival_rate, n_requests, seed=seed))
    stats = result.stats(warmup_fraction=warmup_fraction)
    return BatchQueueStats(
        arrival_rate=arrival_rate,
        batch_size=batch_size,
        completed=stats.completed,
        p99_seconds=stats.p99_seconds,
        p50_seconds=stats.p50_seconds,
        mean_seconds=stats.mean_seconds,
        throughput_ips=stats.throughput_rps,
        server_utilization=stats.utilization,
    )


def simulate_closed_loop(
    concurrency: int,
    batch_size: int,
    occupancy_seconds: float,
    latency_seconds: float | None = None,
    n_batches: int = 2000,
) -> BatchQueueStats:
    """A closed-loop load generator: ``concurrency`` requests in flight.

    Each completed request immediately re-enters the queue, which is how
    production load tests drive a serving stack to 100% utilization (the
    paper's Table 4 IPS figures equal batch capacity, the closed-loop
    signature).  With concurrency C >= batch B the server never starves;
    steady-state response approaches (C/B) * occupancy + (latency -
    occupancy) -- the pipeline-depth inflation behind the published
    p99/service ratios.
    """
    latency = occupancy_seconds if latency_seconds is None else latency_seconds
    curve = ConstantCurve(occupancy_seconds, latency)
    responses, server = run_closed_loop(
        concurrency, batch_size, curve, n_batches=n_batches
    )
    stats = summarize(
        responses,
        horizon=server.free_at,
        busy_time=server.busy_time,
        warmup_fraction=0.25,
        batches=server.batches,
    )
    return BatchQueueStats(
        arrival_rate=batch_size / occupancy_seconds,
        batch_size=batch_size,
        completed=stats.completed,
        p99_seconds=stats.p99_seconds,
        p50_seconds=stats.p50_seconds,
        mean_seconds=stats.mean_seconds,
        throughput_ips=batch_size / occupancy_seconds,
        server_utilization=1.0,
    )
