"""Device tests: functional equivalence and timing behaviour."""

import numpy as np
import pytest

from repro.compiler.driver import TPUDriver
from repro.core.config import TPU_V1
from repro.core.device import TPUDevice
from repro.nn.graph import Model
from tests.conftest import functional_pair


class TestFunctionalEquivalence:
    """The device's int8 output must equal the quantized reference."""

    def test_mlp_bit_exact(self, tiny_mlp):
        ref, out, _result = functional_pair(tiny_mlp)
        assert np.array_equal(ref, out)

    def test_cnn_with_pool_and_residual_bit_exact(self, tiny_cnn):
        ref, out, _result = functional_pair(tiny_cnn)
        assert np.array_equal(ref, out)

    def test_lstm_stack_bit_exact(self, tiny_lstm):
        ref, out, _result = functional_pair(tiny_lstm)
        assert np.array_equal(ref, out)

    def test_multiple_seeds_stay_exact(self, tiny_mlp):
        for seed in (11, 23, 77):
            ref, out, _result = functional_pair(tiny_mlp, seed=seed)
            assert np.array_equal(ref, out)

    def test_output_shape_roundtrip_sequence(self, tiny_lstm):
        ref, out, _result = functional_pair(tiny_lstm)
        assert out.shape == (4, 5, 16)

    def test_run_requires_params(self, tiny_mlp, driver):
        compiled = driver.compile(tiny_mlp)
        with pytest.raises(ValueError):
            driver.run(compiled, np.zeros((5, 20), dtype=np.float32))

    def test_run_checks_batch(self, tiny_mlp):
        drv = TPUDriver()
        compiled = drv.compile_functional(tiny_mlp, seed=1)
        with pytest.raises(ValueError):
            drv.run(compiled, np.zeros((3, 20), dtype=np.float32))


class TestTimingBehaviour:
    def test_taxonomy_partitions_total(self, profiles):
        for name, result in profiles.items():
            b = result.breakdown
            total = b.active + b.weight_stall + b.weight_shift + b.non_matrix
            assert total == pytest.approx(b.total, rel=1e-9), name

    def test_useful_bounded_by_active(self, profiles):
        for result in profiles.values():
            b = result.breakdown
            assert b.useful_mac_weighted <= b.active + 1e-9

    def test_memory_bound_apps_are_weight_stalled(self, profiles):
        for name in ("mlp0", "mlp1", "lstm0", "lstm1"):
            b = profiles[name].breakdown
            assert b.weight_stall_fraction > 0.4, name
            assert b.active_fraction < 0.25, name

    def test_cnn0_is_compute_bound(self, profiles):
        b = profiles["cnn0"].breakdown
        assert b.active_fraction > 0.6
        assert b.weight_stall_fraction < 0.1

    def test_cnn1_half_macs_unused(self, profiles):
        b = profiles["cnn1"].breakdown
        # Shallow feature depths leave a large unused-MAC share.
        assert b.unused_mac_fraction > 0.2

    def test_tops_ordering_matches_paper(self, profiles):
        tops = {name: r.tera_ops for name, r in profiles.items()}
        assert tops["cnn0"] > tops["cnn1"] > tops["mlp0"] > tops["lstm0"]
        assert tops["cnn0"] < 92.0  # never above peak

    def test_mlp0_tops_band(self, profiles):
        # Paper: 12.3 TOPS.  Memory-bound at intensity 200.
        assert profiles["mlp0"].tera_ops == pytest.approx(12.3, rel=0.25)

    def test_faster_memory_speeds_up_memory_bound_apps(self, workloads):
        fast = TPUDriver(TPU_V1.scaled(memory=4.0))
        base = TPUDriver()
        model = workloads["mlp1"]
        base_s = base.profile(base.compile(model)).seconds
        fast_s = fast.profile(fast.compile(model)).seconds
        assert base_s / fast_s > 2.5

    def test_faster_clock_barely_helps_mlp(self, workloads):
        fast = TPUDriver(TPU_V1.scaled(clock=4.0))
        base = TPUDriver()
        model = workloads["mlp1"]
        base_s = base.profile(base.compile(model)).seconds
        fast_s = fast.profile(fast.compile(model)).seconds
        assert base_s / fast_s < 1.3

    def test_instruction_counters(self, profiles, workloads, driver):
        compiled = driver.compile(workloads["mlp1"])
        result = profiles["mlp1"]
        counts = compiled.program.instruction_counts()
        assert result.counters["matmul_instructions"] == counts["MATRIX_MULTIPLY"]
        assert result.counters["weight_tiles_loaded"] == counts["READ_WEIGHTS"]

    def test_weight_bytes_counter_matches_compiler(self, profiles, workloads, driver):
        for name, model in workloads.items():
            compiled = driver.compile(model)
            assert profiles[name].counters["weight_bytes_read"] == pytest.approx(
                compiled.weight_traffic_bytes
            )

    def test_device_rejects_scaled_matrix(self):
        with pytest.raises(NotImplementedError):
            TPUDevice(TPU_V1.scaled(matrix=2))

    def test_sequential_fallback_without_deps(self):
        """Hand-assembled programs (no dep sidecar) still execute."""
        from repro.isa.instructions import Halt, Nop
        from repro.isa.program import TPUProgram

        program = TPUProgram(
            name="nops",
            instructions=(Nop(), Nop(), Halt()),
            tiles={},
            scales=(),
            host_buffers={},
            batch_size=1,
        )
        result = TPUDevice().run(program)
        assert result.counters["nop_instructions"] == 2

    def test_ips_and_tops_properties(self, profiles):
        r = profiles["mlp0"]
        assert r.ips == pytest.approx(200 / r.seconds)
        assert r.tera_ops == pytest.approx(2 * r.useful_macs / r.seconds / 1e12)


class TestHostModel:
    def test_host_fraction_bands(self, workloads, driver, profiles):
        # Table 5 shape: MLP1 has the largest host share; LSTMs small.
        fractions = {
            name: driver.host_fraction(driver.compile(model), profiles[name])
            for name, model in workloads.items()
        }
        assert fractions["mlp1"] == max(fractions.values())
        assert fractions["mlp1"] > 0.3
        assert 0.05 < fractions["mlp0"] < 0.5
        assert fractions["lstm0"] < 0.2

    def test_batch_seconds_adds_host(self, workloads, driver, profiles):
        compiled = driver.compile(workloads["mlp0"])
        total = driver.batch_seconds(compiled, profiles["mlp0"])
        assert total > profiles["mlp0"].seconds

    def test_mlp0_ips_matches_paper_band(self, workloads, driver, profiles):
        # Paper: 225,000 IPS at batch 200 including host overhead.
        compiled = driver.compile(workloads["mlp0"])
        ips = driver.ips(compiled, profiles["mlp0"])
        assert 120_000 < ips < 400_000
