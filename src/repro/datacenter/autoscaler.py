"""Autoscaling: grow and shrink the replica set while the fleet serves.

The paper's fleets are statically provisioned for peak, which is exactly
why Figure 10's proportionality penalty hurts: at the 10--40% loads
datacenters actually see, the TPU still draws ~90% of full power.  An
autoscaler trades that idle burn against SLO risk -- replicas take
``spinup_seconds`` to come online, so scaling too late shows up as p99
violations and scaling too early as wasted Watts.  Three policies:

* :class:`StaticPolicy`     -- the paper's baseline: a fixed fleet.
* :class:`ReactivePolicy`   -- target-tracking on observed utilization
  (the classic HPA rule ``desired = ceil(active * util / target)``),
  with scale-up/scale-down cooldowns.
* :class:`PredictivePolicy` -- diurnal-aware: provisions for the traffic
  the known day/night cycle will offer one spin-up lead ahead.

The simulation itself is the shared :class:`~repro.serving.fleet.FleetSim`
core driven with a dynamic routing set: deactivated replicas stop
receiving work but stay simulated until their queues drain, and every
replica's powered (on, off) span is reported for energy accounting.
"""

from __future__ import annotations

import abc
import math
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

# Aliased: `obs` is this module's naming convention for FleetObservation.
from repro import obs as obslib
from repro.serving.fleet import FleetResult, FleetSim, Replica, Router, make_router

#: Trace track (Chrome tid on :data:`repro.obs.SIM_PID`) reserved for the
#: autoscaler's control-tick markers, well above any replica's track.
AUTOSCALER_TID = 1000


@dataclass(frozen=True)
class FleetObservation:
    """What a scaling policy sees at a control tick."""

    now: float
    active: int  # replicas currently serving
    spinning_up: int  # provisioned but not yet online
    queued: int  # requests waiting across active replicas
    arrival_rate: float  # offered requests/s over the last control window
    utilization: float  # active-replica busy fraction over the last window
    replica_rps: float  # one replica's full-batch capacity


class ScalingPolicy(abc.ABC):
    """Maps an observation to a desired replica count."""

    name: str

    @abc.abstractmethod
    def desired_replicas(self, obs: FleetObservation) -> int:
        """Total replicas (active + spinning up) the fleet should have."""


class StaticPolicy(ScalingPolicy):
    """The paper's baseline: a fixed, peak-provisioned fleet."""

    def __init__(self, replicas: int) -> None:
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas}")
        self.name = f"static({replicas})"
        self.replicas = replicas

    def desired_replicas(self, obs: FleetObservation) -> int:
        return self.replicas


class ReactivePolicy(ScalingPolicy):
    """Rate-tracking with queue-depth/utilization escape hatches.

    The primary signal is the *offered rate*: ``desired = ceil(rate /
    (target_utilization * replica_rps))``.  Busy-fraction tracking (the
    classic HPA rule) is unsound for batched serving -- spreading the
    same load over more replicas shrinks every batch, so per-request
    service cost rises and the fleet *stays* busy, which reads as demand
    and runs away to ``max_replicas`` (the batch-efficiency collapse the
    batch-size studies warn about).  Utilization and queue depth instead
    act as thresholds: a saturated window (``>= high_utilization``) or a
    standing backlog (``> max_backlog_per_replica`` per active replica)
    means the rate estimate lags reality, and buys one extra replica per
    control tick.  Scale-ups apply immediately (missing the SLO is worse
    than a few idle Watts); scale-downs wait out ``cooldown_seconds``
    since the last change so queue noise doesn't thrash the fleet.
    """

    name = "reactive"

    def __init__(
        self,
        target_utilization: float = 0.7,
        high_utilization: float = 0.9,
        max_backlog_per_replica: int = 64,
        cooldown_seconds: float = 0.0,
    ) -> None:
        if not 0 < target_utilization <= high_utilization <= 1:
            raise ValueError(
                "need 0 < target_utilization <= high_utilization <= 1, got "
                f"{target_utilization} and {high_utilization}"
            )
        if max_backlog_per_replica <= 0:
            raise ValueError("max_backlog_per_replica must be positive")
        if cooldown_seconds < 0:
            raise ValueError(f"cooldown must be non-negative, got {cooldown_seconds}")
        self.target = target_utilization
        self.high = high_utilization
        self.max_backlog = max_backlog_per_replica
        self.cooldown = cooldown_seconds
        self._last_change = -math.inf

    def desired_replicas(self, obs: FleetObservation) -> int:
        current = obs.active + obs.spinning_up
        desired = max(math.ceil(obs.arrival_rate / (self.target * obs.replica_rps)), 1)
        if (
            obs.utilization >= self.high
            or obs.queued > self.max_backlog * max(obs.active, 1)
        ):
            # The rate estimate lags a standing queue or a saturated
            # fleet; nudge one step past whatever is already coming up.
            desired = max(desired, current + 1)
        if desired > current:
            self._last_change = obs.now
            return desired
        if desired < current and obs.now - self._last_change >= self.cooldown:
            self._last_change = obs.now
            return desired
        return current


class PredictivePolicy(ScalingPolicy):
    """Diurnal-aware provisioning: scale for the load a lead-time ahead.

    Knows the traffic model (``rate(t) = mean * (1 + swing *
    sin(2 pi t / period))``, the :func:`~repro.serving.traffic.
    diurnal_arrivals` generator) and provisions
    ``ceil(rate(t + lead) / (target_utilization * replica_rps))`` so
    capacity is already online when the morning ramp arrives.
    """

    name = "predictive"

    def __init__(
        self,
        mean_rate: float,
        swing: float,
        period_seconds: float,
        lead_seconds: float,
        target_utilization: float = 0.6,
    ) -> None:
        if mean_rate <= 0:
            raise ValueError(f"mean_rate must be positive, got {mean_rate}")
        if not 0 <= swing < 1:
            raise ValueError(f"swing must be in [0, 1), got {swing}")
        if period_seconds <= 0:
            raise ValueError(f"period must be positive, got {period_seconds}")
        if not 0 < target_utilization <= 1:
            raise ValueError(
                f"target_utilization must be in (0, 1], got {target_utilization}"
            )
        self.mean_rate = mean_rate
        self.swing = swing
        self.period = period_seconds
        self.lead = lead_seconds
        self.target = target_utilization

    def rate_at(self, t: float) -> float:
        return self.mean_rate * (
            1.0 + self.swing * math.sin(2.0 * math.pi * t / self.period)
        )

    def desired_replicas(self, obs: FleetObservation) -> int:
        expected = self.rate_at(obs.now + self.lead)
        return math.ceil(expected / (self.target * obs.replica_rps))


@dataclass(frozen=True)
class AutoscaleConfig:
    """Mechanics of the control loop (all in simulation seconds)."""

    control_interval_seconds: float
    spinup_seconds: float
    min_replicas: int = 1
    max_replicas: int = 64

    def __post_init__(self) -> None:
        if self.control_interval_seconds <= 0:
            raise ValueError("control interval must be positive")
        if self.spinup_seconds < 0:
            raise ValueError("spin-up latency must be non-negative")
        if not 0 < self.min_replicas <= self.max_replicas:
            raise ValueError(
                f"need 0 < min <= max, got {self.min_replicas}..{self.max_replicas}"
            )


@dataclass(frozen=True)
class AutoscaleResult:
    """A completed autoscaled run: responses plus provisioning history."""

    fleet: FleetResult
    powered: tuple[tuple[float, float], ...]  # per replica, FleetResult order
    timeline: tuple[tuple[float, int], ...]  # (time, active count) steps
    peak_replicas: int
    mean_powered: float  # time-averaged powered replica count

    def stats(self, **kwargs):
        return self.fleet.stats(**kwargs)


def _record_tick(observation: FleetObservation, desired: int) -> None:
    """Trace marker + metrics for one control tick (cold path)."""
    current = observation.active + observation.spinning_up
    if obslib.TRACER.enabled:
        obslib.TRACER.sim_span(
            "autoscale:tick", observation.now, 0.0, cat="autoscaler",
            tid=AUTOSCALER_TID,
            desired=desired, active=observation.active,
            spinning=observation.spinning_up, queued=observation.queued,
            rate_rps=observation.arrival_rate,
            utilization=observation.utilization,
        )
    if obslib.REGISTRY.enabled:
        obslib.counter("autoscaler.ticks").inc()
        if desired > current:
            obslib.counter("autoscaler.scale_ups").inc()
        elif desired < current:
            obslib.counter("autoscaler.scale_downs").inc()
        obslib.histogram("autoscaler.desired").observe(desired)
        obslib.gauge("autoscaler.active").set(observation.active)


class AutoscaledFleet:
    """A fleet whose replica count follows a :class:`ScalingPolicy`."""

    def __init__(
        self,
        make_replica: Callable[[int], Replica],
        policy: ScalingPolicy,
        config: AutoscaleConfig,
        replica_rps: float,
        router: Router | str = "jsq",
    ) -> None:
        if replica_rps <= 0:
            raise ValueError(f"replica_rps must be positive, got {replica_rps}")
        self.make_replica = make_replica
        self.policy = policy
        self.config = config
        self.replica_rps = replica_rps
        self.router = make_router(router) if isinstance(router, str) else router

    def _clamp(self, n: int) -> int:
        return min(max(n, self.config.min_replicas), self.config.max_replicas)

    def run(self, arrivals: np.ndarray, drain: bool = True) -> AutoscaleResult:
        arrivals = np.asarray(arrivals, dtype=float)
        cfg = self.config
        interval = cfg.control_interval_seconds

        # Bootstrap: the first window's offered rate is known from the
        # trace itself, so the initial fleet is sized like a tick at t=0.
        rate0 = float(np.searchsorted(arrivals, interval, side="right")) / interval
        boot = FleetObservation(
            now=0.0, active=cfg.min_replicas, spinning_up=0, queued=0,
            arrival_rate=rate0, utilization=min(rate0 / (cfg.min_replicas * self.replica_rps), 1.0),
            replica_rps=self.replica_rps,
        )
        initial = self._clamp(self.policy.desired_replicas(boot))
        replicas = [self.make_replica(i) for i in range(initial)]
        sim = FleetSim(replicas, self.router, arrivals, drain=drain)

        powered_on = {id(r): 0.0 for r in replicas}
        deactivated_at: dict[int, float] = {}
        spinning: list[Replica] = []  # provisioned, not yet online
        timeline: list[tuple[float, int]] = [(0.0, initial)]

        def activate(replica: Replica) -> None:
            if id(replica) in deactivated_at:  # cancelled during spin-up
                return
            spinning.remove(replica)
            sim.eligible.append(replica)
            timeline.append((sim.loop.now, len(sim.eligible)))

        def window_utilization(now: float) -> float:
            start = max(now - interval, 0.0)
            busy = 0.0
            for replica in sim.eligible:
                for s, e in reversed(replica.server.busy_intervals):
                    if e <= start and s <= start:
                        break
                    busy += max(0.0, min(e, now) - max(s, start))
            span = (now - start) * max(len(sim.eligible), 1)
            return min(busy / span, 1.0) if span > 0 else 0.0

        def observe(now: float) -> FleetObservation:
            start = max(now - interval, 0.0)
            lo, hi = np.searchsorted(arrivals, [start, now], side="right")
            rate = float(hi - lo) / (now - start) if now > start else 0.0
            return FleetObservation(
                now=now,
                active=len(sim.eligible),
                spinning_up=len(spinning),
                queued=sum(r.backlog for r in sim.eligible),
                arrival_rate=rate,
                utilization=window_utilization(now),
                replica_rps=self.replica_rps,
            )

        def scale_to(desired: int, now: float) -> None:
            current = len(sim.eligible) + len(spinning)
            while current < desired:  # spin up
                replica = self.make_replica(len(sim.replicas))
                powered_on[id(replica)] = now  # pays idle Watts from now
                sim.replicas.append(replica)
                spinning.append(replica)
                sim.loop.schedule(
                    now + cfg.spinup_seconds, lambda _t, r=replica: activate(r)
                )
                current += 1
            while current > desired:  # scale down
                if spinning:  # cancelling a spin-up is free and instant
                    replica = spinning.pop()
                elif len(sim.eligible) > cfg.min_replicas:
                    # Retire the emptiest replica (ties break on list
                    # position, keeping runs deterministic); it stops
                    # receiving work now and powers off once its queue
                    # drains.
                    pick = min(
                        range(len(sim.eligible)),
                        key=lambda i: (sim.eligible[i].backlog, i),
                    )
                    replica = sim.eligible.pop(pick)
                    timeline.append((now, len(sim.eligible)))
                else:
                    break
                deactivated_at[id(replica)] = now
                current -= 1

        def tick(_t: float) -> None:
            now = sim.loop.now
            observation = observe(now)
            desired = self._clamp(self.policy.desired_replicas(observation))
            if obslib.TRACER.enabled or obslib.REGISTRY.enabled:
                _record_tick(observation, desired)
            scale_to(desired, now)
            if sim.pending > 0:
                sim.loop.schedule(now + interval, tick)

        sim.loop.schedule(interval, tick)
        result = sim.run()

        horizon = result.horizon
        powered: list[tuple[float, float]] = []
        for replica in sim.replicas:
            on = powered_on[id(replica)]
            off = deactivated_at.get(id(replica), horizon)
            # A retired replica keeps burning until its queue drained.
            if replica.server.busy_intervals:
                off = max(off, replica.server.busy_intervals[-1][1])
            powered.append((on, min(max(off, on), horizon)))
        span = sum(off - on for on, off in powered)
        return AutoscaleResult(
            fleet=result,
            powered=tuple(powered),
            timeline=tuple(timeline),
            peak_replicas=max(count for _, count in timeline),
            mean_powered=span / horizon if horizon > 0 else 0.0,
        )
