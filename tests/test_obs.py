"""Observability tests: trace validity, zero-overhead disabled mode,
metrics registry semantics, logging, and the CLI trace surfaces."""

import json
import logging

import pytest

from repro import obs, perfcache
from repro.analysis import EXPERIMENTS
from repro.compiler.driver import TPUDriver
from repro.nn.workloads import paper_workloads
from repro.serving.batcher import FixedBatcher
from repro.serving.engine import ConstantCurve
from repro.serving.fleet import Fleet, Replica


@pytest.fixture(autouse=True)
def _pristine_obs():
    """Every test starts and ends with tracing/metrics off and empty."""
    obs.set_tracing(False)
    obs.set_metrics(False)
    obs.TRACER.clear()
    obs.REGISTRY.reset()
    yield
    obs.set_tracing(False)
    obs.set_metrics(False)
    obs.TRACER.clear()
    obs.REGISTRY.reset()


def _small_fleet_run():
    curve = ConstantCurve(occupancy_seconds=1e-3, latency_seconds=2e-3)
    fleet = Fleet(
        [Replica(curve, FixedBatcher(4), name=f"r{i}") for i in range(2)],
        router="jsq",
    )
    arrivals = [i * 2.5e-4 for i in range(64)]
    return fleet.run(__import__("numpy").asarray(arrivals))


def _traced_all_layers():
    """Compile + profile a fresh model and run a fleet inside capture()."""
    # Fresh driver + cold emission memo: the compile cannot cache-hit,
    # so the trace contains real pass:/allocate: spans.
    perfcache.GLOBAL_LOWERING.invalidate("mlp0")
    with obs.capture() as tracer:
        driver = TPUDriver()
        compiled = driver.compile(paper_workloads()["mlp0"])
        driver.profile(compiled)
        _small_fleet_run()
        spans = tracer.snapshot()
        trace = tracer.chrome_trace()
    return spans, trace


# ----------------------------------------------------------------------
# trace format
# ----------------------------------------------------------------------
def test_chrome_trace_has_required_keys_and_layers():
    spans, trace = _traced_all_layers()
    events = trace["traceEvents"]
    assert events, "traced run produced no events"
    for event in events:
        for key in ("ph", "ts", "pid", "tid", "name"):
            assert key in event, f"event missing {key!r}: {event}"
        assert event["ph"] in ("X", "M")
        if event["ph"] == "X":
            assert event["dur"] >= 0
    cats = {e.get("cat") for e in events if e["ph"] == "X"}
    assert {"compiler", "device", "serving"} <= cats, cats
    # Both clock domains present: wall (compiler/device) and simulated.
    pids = {e["pid"] for e in events if e["ph"] == "X"}
    assert obs.WALL_PID in pids and obs.SIM_PID in pids


def test_spans_nest_monotonically_per_track():
    """Wall tracks form a call tree; replica tracks serialize batches.

    Request lifecycle spans (REQ_PID) overlap by design -- a request is
    an arrival-to-completion interval, not a call frame -- so the
    nesting invariant applies to the other two clock domains.
    """
    spans, _ = _traced_all_layers()
    by_track = {}
    for span in spans:
        if span.pid != obs.REQ_PID:
            by_track.setdefault((span.pid, span.tid), []).append(span)
    assert by_track
    eps = 1e-3  # microseconds; perf_counter jitter guard
    for track, track_spans in by_track.items():
        track_spans.sort(key=lambda s: (s.ts, -s.dur))
        stack = []  # end timestamps of open spans
        for span in track_spans:
            while stack and stack[-1] <= span.ts + eps:
                stack.pop()
            if stack:
                assert span.ts + span.dur <= stack[-1] + eps, (
                    f"span {span.name!r} on track {track} overlaps its "
                    "enclosing span without nesting"
                )
            stack.append(span.ts + span.dur)


def test_compile_span_encloses_pass_spans():
    spans, _ = _traced_all_layers()
    compile_spans = [s for s in spans if s.name == "compile:mlp0"]
    passes = [s for s in spans if s.name.startswith("pass:mlp0.")]
    assert compile_spans and passes
    outer = compile_spans[0]
    for inner in passes:
        assert outer.ts <= inner.ts
        assert inner.ts + inner.dur <= outer.ts + outer.dur + 1e-3


def test_request_spans_live_on_their_own_pid():
    spans, _ = _traced_all_layers()
    requests = [s for s in spans if s.name == "request"]
    assert len(requests) == 64  # every arrival got a lifecycle span
    assert {s.pid for s in requests} == {obs.REQ_PID}
    batches = [s for s in spans if s.name == "batch"]
    assert batches and {s.pid for s in batches} == {obs.SIM_PID}


def test_trace_exports_round_trip(tmp_path):
    _, trace = _traced_all_layers()
    with obs.capture() as tracer:
        with obs.span("outer", cat="test", answer=42):
            pass
        chrome_path = tmp_path / "trace.json"
        jsonl_path = tmp_path / "spans.jsonl"
        n_chrome = tracer.write_chrome(str(chrome_path))
        n_jsonl = tracer.write_jsonl(str(jsonl_path))
    assert n_chrome == n_jsonl == 1
    loaded = json.loads(chrome_path.read_text())
    assert loaded["traceEvents"][-1]["args"] == {"answer": 42}
    lines = [json.loads(line) for line in jsonl_path.read_text().splitlines()]
    assert lines[0]["name"] == "outer" and lines[0]["args"] == {"answer": 42}


# ----------------------------------------------------------------------
# disabled mode is really off
# ----------------------------------------------------------------------
def test_disabled_tracer_records_nothing():
    assert not obs.tracing_enabled()
    driver = TPUDriver()
    compiled = driver.compile(paper_workloads()["mlp0"])
    driver.profile(compiled)
    _small_fleet_run()
    assert obs.TRACER.events == []
    assert obs.span("x") is obs.span("y")  # the shared no-op span


def test_disabled_registry_mutates_nothing():
    assert not obs.metrics_enabled()
    obs.counter("t.c").inc()
    obs.gauge("t.g").set(3.0)
    obs.histogram("t.h").observe(1.0)
    assert obs.counter("t.c").value == 0.0
    assert obs.gauge("t.g").value is None
    assert obs.histogram("t.h").count == 0


def test_paper_table_bytes_identical_with_tracing_enabled():
    """Tracing observes; it must not move a rendered byte (spot check)."""
    import hashlib

    from tests.test_paper_parity import TABLE_TEXT_SHA256

    for exp_id in ("table1", "table6"):
        with obs.capture():
            result = EXPERIMENTS[exp_id]()
        digest = hashlib.sha256(result.text.encode()).hexdigest()
        assert digest == TABLE_TEXT_SHA256[exp_id], (
            f"{exp_id} changed when tracing was enabled"
        )


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
def test_counter_gauge_histogram_when_enabled():
    obs.set_metrics(True)
    obs.counter("m.c").inc()
    obs.counter("m.c").inc(2.5)
    obs.gauge("m.g").set(7)
    for value in (1.0, 2.0, 3.0, 4.0):
        obs.histogram("m.h").observe(value)
    snapshot = obs.metrics_snapshot()
    assert snapshot["m.c"] == 3.5
    assert snapshot["m.g"] == 7.0
    hist = snapshot["m.h"]
    assert hist["count"] == 4 and hist["sum"] == 10.0
    assert hist["min"] == 1.0 and hist["max"] == 4.0 and hist["mean"] == 2.5
    assert hist["p50"] == 3.0  # nearest-rank over [1, 2, 3, 4]


def test_histogram_percentile_and_empty_summary():
    obs.set_metrics(True)
    hist = obs.histogram("m.p")
    assert hist.summary() == {"count": 0}
    for value in range(100):
        hist.observe(float(value))
    assert hist.percentile(50.0) == 50.0
    assert hist.percentile(99.0) == 99.0


def test_perfcache_counters_surface_in_snapshot():
    from repro import perfcache

    obs.set_metrics(True)
    snapshot = obs.metrics_snapshot()
    stats = perfcache.get_cache().stats()
    assert snapshot["perfcache.hits"] == stats.hits
    assert snapshot["perfcache.misses"] == stats.misses
    assert snapshot["perfcache.entries"] == stats.entries
    assert 0.0 <= snapshot["perfcache.hit_rate"] <= 1.0


def test_serving_metrics_recorded_per_batch():
    obs.set_metrics(True)
    result = _small_fleet_run()
    snapshot = obs.metrics_snapshot()
    assert snapshot["serving.batches"] == sum(result.batches_per_replica)
    assert snapshot["serving.requests"] == 64
    assert snapshot["serving.batch_size"]["max"] <= 4


def test_device_metrics_mirror_cycle_breakdown():
    obs.set_metrics(True)
    driver = TPUDriver()
    compiled = driver.compile(paper_workloads()["mlp0"])
    result = driver.profile(compiled)
    snapshot = obs.metrics_snapshot()
    assert snapshot["device.runs"] == 1
    assert snapshot["device.cycles.total"] == result.cycles
    assert snapshot["device.cycles.mxu_active"] > 0


# ----------------------------------------------------------------------
# profile summary + logging
# ----------------------------------------------------------------------
def test_span_summary_groups_and_ranks():
    with obs.capture() as tracer:
        tracer.record_wall("slow", 0.0, 3000.0, cat="test")
        tracer.record_wall("fast", 0.0, 1000.0, cat="test")
        tracer.record_wall("fast", 1000.0, 1000.0, cat="test")
        tracer.sim_span("batch", 0.0, 1.0, cat="serving", tid=0)
        table = obs.span_summary(tracer.snapshot())
    text = table.render()
    lines = [line for line in text.splitlines() if "|" in line]
    assert any("slow" in line and "wall" in line for line in lines)
    assert any("batch" in line and "sim" in line for line in lines)
    fast_row = next(line for line in lines if "fast" in line)
    assert " 2 " in fast_row  # count column groups the two fast spans


def test_logging_goes_to_current_stderr(capsys):
    log = obs.get_logger("repro.test_obs")
    log.info("hello from the logger")
    assert "hello from the logger" in capsys.readouterr().err
    assert log.level in (logging.NOTSET,)  # children inherit the root level


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------
def test_cli_trace_subcommand_writes_chrome_trace(tmp_path):
    from repro.__main__ import main

    out = tmp_path / "trace.json"
    code = main([
        "trace", "serve", "--workload", "mlp0", "--replicas", "2",
        "--requests", "800", "--loads", "0.5", "--trace-out", str(out),
    ])
    assert code == 0
    events = json.loads(out.read_text())["traceEvents"]
    cats = {e.get("cat") for e in events if e.get("ph") == "X"}
    assert "serving" in cats
    assert not obs.tracing_enabled()  # the CLI restored the global state


def test_cli_trace_requires_a_command_and_rejects_nesting(capsys):
    from repro.__main__ import main

    assert main(["trace"]) == 2
    assert main(["trace", "trace", "serve"]) == 2
    err = capsys.readouterr().err
    assert "give a command" in err and "cannot nest" in err


def test_cli_profile_flag_prints_span_table(tmp_path, capsys):
    from repro.__main__ import main

    code = main([
        "serve", "--workload", "mlp0", "--replicas", "2",
        "--requests", "800", "--loads", "0.5", "--profile",
    ])
    assert code == 0
    err = capsys.readouterr().err
    assert "span-time profile" in err
    assert not obs.metrics_enabled()


def test_env_trace_out_enables_tracing(tmp_path, monkeypatch):
    from repro.__main__ import main

    out = tmp_path / "env_trace.json"
    monkeypatch.setenv("REPRO_TRACE_OUT", str(out))
    code = main([
        "serve", "--workload", "mlp0", "--replicas", "2",
        "--requests", "800", "--loads", "0.5",
    ])
    assert code == 0
    assert json.loads(out.read_text())["traceEvents"]


# ----------------------------------------------------------------------
# bench schema
# ----------------------------------------------------------------------
def test_bench_validate_accepts_and_checks_metrics():
    from repro.benchmark import SCHEMA, validate

    base = {
        "schema": SCHEMA,
        "git_rev": "abc1234",
        "quick": True,
        "benches": [{
            "name": "x", "wall_seconds": 0.5, "cache_hit_rate": 0.9,
            "metrics": {"serving.batches": 3.0},
        }],
    }
    validate(base)  # metrics dict is fine
    del base["benches"][0]["metrics"]
    validate(base)  # and optional
    base["benches"][0]["metrics"] = ["not", "a", "dict"]
    with pytest.raises(ValueError, match="metrics must be a dict"):
        validate(base)
