"""Table 4: p99 response time and throughput for MLP0 as batch varies.

For each (platform, batch) pair the harness searches for the highest
offered load whose simulated p99 still fits the 7 ms limit; where no load
fits (the large-batch rows), it reports the near-capacity operating point
and its (over-limit) p99, exactly as the paper's 100%-max-IPS rows do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.latency.queueing import simulate_batch_queue, simulate_closed_loop
from repro.nn.graph import Model
from repro.platforms.base import Platform
from repro.serving.fleet import occupancy_latency

#: The MLP0 application developer's limit (Table 4).
MLP0_SLA_SECONDS = 7e-3

#: The batch sizes the paper benchmarked per platform.
TABLE4_BATCHES = {"cpu": (16, 64), "gpu": (16, 64), "tpu": (200, 250)}


@dataclass(frozen=True)
class Table4Row:
    platform: str
    batch: int
    p99_seconds: float
    ips: float
    pct_of_max: float
    met_sla: bool


# Shared with the fleet simulator: (occupancy, latency) per batch.
_occupancy_latency = occupancy_latency


def max_ips_under_sla(
    platform: Platform,
    model: Model,
    batch: int,
    sla_seconds: float = MLP0_SLA_SECONDS,
    n_requests: int = 20000,
    seed: int = 0,
) -> tuple[float, float, bool]:
    """Open-loop view: (throughput, p99, met) at the best Poisson load.

    Scans offered load downward from capacity; returns the first point
    whose p99 fits, or the near-capacity point if none does.  Used by the
    queueing analyses; Table 4 itself reports the closed-loop points
    (see :func:`table4_rows`).
    """
    occupancy, latency = _occupancy_latency(platform, model, batch)
    capacity = batch / occupancy
    fallback = None
    for fraction in (0.98, 0.95, 0.9, 0.85, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2):
        stats = simulate_batch_queue(
            arrival_rate=capacity * fraction,
            batch_size=batch,
            occupancy_seconds=occupancy,
            latency_seconds=latency,
            n_requests=n_requests,
            seed=seed,
        )
        if fallback is None:
            fallback = stats
        if stats.p99_seconds <= sla_seconds:
            return stats.throughput_ips, stats.p99_seconds, True
    return fallback.throughput_ips, fallback.p99_seconds, False


def table4_rows(
    mlp0: Model,
    platforms: dict[str, Platform],
    sla_seconds: float = MLP0_SLA_SECONDS,
) -> list[Table4Row]:
    """The six Table 4 rows (CPU/GPU at 16/64, TPU at 200/250).

    Matches the paper's measurement style: a closed-loop load generator
    drives each batch configuration to capacity, so IPS is batch/service
    and p99 reflects the serving pipeline's depth (the platform's
    calibrated p99 factor plays the concurrency-depth role).
    """
    rows = []
    for kind, batches in TABLE4_BATCHES.items():
        platform = platforms[kind]
        results = []
        for batch in batches:
            occupancy, latency = _occupancy_latency(platform, mlp0, batch)
            concurrency = max(int(round(platform.p99_factor * batch)), batch)
            stats = simulate_closed_loop(
                concurrency=concurrency,
                batch_size=batch,
                occupancy_seconds=occupancy,
                latency_seconds=latency,
            )
            results.append(
                (batch, stats.throughput_ips, stats.p99_seconds,
                 stats.p99_seconds <= sla_seconds)
            )
        best_ips = max(r[1] for r in results)
        for batch, ips, p99, met in results:
            rows.append(
                Table4Row(
                    platform=platform.name,
                    batch=batch,
                    p99_seconds=p99,
                    ips=ips,
                    pct_of_max=ips / best_ips,
                    met_sla=met,
                )
            )
    return rows
