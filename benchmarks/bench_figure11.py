"""Regenerate Figure 11: the design-space sensitivity sweep."""

from benchmarks.conftest import run_experiment


def test_figure11(benchmark):
    result = run_experiment(benchmark, "figure11")
    assert 2.5 <= result.measured["memory_4x"] <= 4.0  # paper ~3x
    assert result.measured["clock_4x"] <= 1.35  # paper ~1x
    assert result.measured["matrix_2x"] <= 1.05  # paper: slight degradation
