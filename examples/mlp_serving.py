#!/usr/bin/env python3
"""Latency-bounded serving: reproduce the Table 4 trade-off interactively.

Sweeps batch sizes on all three platforms for MLP0 under the 7 ms p99
limit, showing why CPUs and GPUs must serve small, inefficient batches
while the TPU's deterministic execution keeps large batches inside the
deadline.
"""

from repro.latency.queueing import simulate_closed_loop
from repro.nn.workloads import mlp0
from repro.platforms.cpu import HaswellPlatform
from repro.platforms.gpu import K80Platform
from repro.platforms.tpu import TPUPlatform
from repro.util.tables import TextTable

SLA_MS = 7.0


def main() -> None:
    model = mlp0()
    platforms = [HaswellPlatform(), K80Platform(), TPUPlatform()]
    table = TextTable(
        ["Platform", "Batch", "Service (ms)", "p99 (ms)", "IPS", "Meets 7 ms?"],
        title="MLP0 serving points (closed-loop load at capacity)",
    )
    for platform in platforms:
        for batch in (16, 64, 200, 250):
            service = platform.service_seconds(model, batch)
            occupancy = platform.occupancy_seconds(model, batch)
            depth = max(int(round(platform.p99_factor * batch)), batch)
            stats = simulate_closed_loop(depth, batch, occupancy, service)
            table.add_row([
                platform.name,
                batch,
                service * 1e3,
                stats.p99_seconds * 1e3,
                f"{stats.throughput_ips:,.0f}",
                "yes" if stats.p99_seconds <= SLA_MS / 1e3 else "NO",
            ])
    print(table.render())
    print(
        "\nThe paper's Table 4: CPUs/GPUs top out near batch 16 under the\n"
        "deadline (42%/37% of their best throughput), while the TPU serves\n"
        "batch 200 at ~80% of its maximum -- deterministic execution is a\n"
        "better match for 99th-percentile guarantees."
    )


if __name__ == "__main__":
    main()
