"""Opcode assignments for the TPU's CISC instruction set."""

from __future__ import annotations

from enum import IntEnum


class Opcode(IntEnum):
    """The ~dozen TPU instructions (Section 2).

    Alternate host memory read/write are flag variants of the base host
    ops, and Convolve is a flag variant of MatrixMultiply, matching the
    paper's description of the instruction list.
    """

    READ_HOST_MEMORY = 0x01
    WRITE_HOST_MEMORY = 0x02
    READ_WEIGHTS = 0x03
    MATRIX_MULTIPLY = 0x04
    ACTIVATE = 0x05
    VECTOR = 0x06  # fused element-wise ops in the vector path [Tho15]
    SYNC = 0x07
    SYNC_HOST = 0x08
    CONFIGURE = 0x09
    INTERRUPT_HOST = 0x0A
    DEBUG_TAG = 0x0B
    NOP = 0x0C
    HALT = 0x0D


#: Encoded instruction sizes in bytes.  Everything is the paper's 12-byte
#: format except the fused vector op, which needs a second source address.
INSTRUCTION_BYTES = {opcode: 12 for opcode in Opcode}
INSTRUCTION_BYTES[Opcode.VECTOR] = 16
