"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``profile <app>``     -- compile a Table-1 workload and print its cycle
  breakdown (Table 3 style);
* ``experiment <id>``   -- regenerate one table/figure (e.g. ``table6``);
* ``report [path]``     -- regenerate every experiment into a markdown
  report (defaults to EXPERIMENTS.md);
* ``list``              -- list workloads and experiment ids.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_list(_args: argparse.Namespace) -> int:
    from repro.analysis import EXPERIMENTS
    from repro.nn.workloads import WORKLOAD_BUILDERS

    print("workloads:  " + ", ".join(WORKLOAD_BUILDERS))
    print("experiments: " + ", ".join(EXPERIMENTS))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro import TPUDriver, build_workload

    model = build_workload(args.app)
    driver = TPUDriver()
    compiled = driver.compile(
        model, weight_bits=args.weight_bits, activation_bits=args.activation_bits
    )
    result = driver.profile(compiled)
    b = result.breakdown
    print(model.summary())
    print(compiled.program.summary())
    print(f"cycles            : {result.cycles:,.0f} ({result.seconds * 1e3:.2f} ms/batch)")
    print(f"array active      : {b.active_fraction:.1%} (useful {b.useful_mac_fraction:.1%})")
    print(f"weight stall/shift: {b.weight_stall_fraction:.1%} / {b.weight_shift_fraction:.1%}")
    print(f"non-matrix        : {b.non_matrix_fraction:.1%} "
          f"(RAW {b.raw_stall_fraction:.1%}, input {b.input_stall_fraction:.1%})")
    print(f"delivered         : {result.tera_ops:.1f} TOPS")
    print(f"throughput        : {driver.ips(compiled, result):,.0f} IPS incl. host")
    print(f"Unified Buffer    : {compiled.ub_peak_bytes / 2**20:.1f} MiB")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.analysis import EXPERIMENTS

    fn = EXPERIMENTS.get(args.exp_id)
    if fn is None:
        print(f"unknown experiment {args.exp_id!r}; try: "
              + ", ".join(EXPERIMENTS), file=sys.stderr)
        return 2
    print(fn())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import main as report_main

    return report_main(["report", args.output])


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TPU ISCA-2017 reproduction: simulate, analyze, report.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and experiments").set_defaults(
        fn=_cmd_list
    )

    profile = sub.add_parser("profile", help="simulate one workload")
    profile.add_argument("app", help="mlp0|mlp1|lstm0|lstm1|cnn0|cnn1")
    profile.add_argument("--weight-bits", type=int, default=8, choices=(8, 16))
    profile.add_argument("--activation-bits", type=int, default=8, choices=(8, 16))
    profile.set_defaults(fn=_cmd_profile)

    experiment = sub.add_parser("experiment", help="regenerate one table/figure")
    experiment.add_argument("exp_id", help="e.g. table6, figure9, tpu_prime")
    experiment.set_defaults(fn=_cmd_experiment)

    report = sub.add_parser("report", help="regenerate the full report")
    report.add_argument("output", nargs="?", default="EXPERIMENTS.md")
    report.set_defaults(fn=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
